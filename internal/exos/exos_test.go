package exos

import (
	"testing"

	"xok/internal/ostest"
	"xok/internal/sim"
	"xok/internal/unix"
)

func runner(cfg Config) (ostest.RunFunc, *System) {
	s := Boot(cfg)
	return func(main func(unix.Proc)) {
		s.Spawn("test", 0, main)
		s.Run()
	}, s
}

func TestFileOpsConformance(t *testing.T) {
	run, _ := runner(Config{Protect: true})
	if err := ostest.CheckFileOps("Xok/ExOS", run); err != nil {
		t.Fatal(err)
	}
}

func TestPipeConformanceProtected(t *testing.T) {
	run, _ := runner(Config{Protect: true})
	if err := ostest.CheckPipe(run); err != nil {
		t.Fatal(err)
	}
}

func TestPipeConformanceShared(t *testing.T) {
	run, _ := runner(Config{SharedMemPipes: true})
	if err := ostest.CheckPipe(run); err != nil {
		t.Fatal(err)
	}
}

func TestGetpidIsLibraryCall(t *testing.T) {
	// Section 7.1: ~100 cycles on Xok/ExOS — a procedure call, no
	// kernel crossing.
	run, s := runner(Config{})
	sysBefore := s.Stats().Get(sim.CtrSyscalls)
	cost := ostest.GetpidCost(run)
	if cost < 80 || cost > 130 {
		t.Fatalf("getpid = %d cycles, want ~100", cost)
	}
	// getpid itself must not trap (other setup calls may).
	delta := s.Stats().Get(sim.CtrSyscalls) - sysBefore
	if delta > 20 {
		t.Fatalf("getpid path made %d syscalls", delta)
	}
}

func TestForkCostNearSixMilliseconds(t *testing.T) {
	// Section 6.2: "Fork takes six milliseconds on ExOS".
	run, _ := runner(Config{})
	cost := ostest.ForkCost(run)
	if cost < sim.FromMillis(6) || cost > sim.FromMillis(12) {
		t.Fatalf("fork+exec+wait = %v, want 6ms fork dominant", cost)
	}
}

func TestPipeLatencyOrdering(t *testing.T) {
	// Table 2 shape: shared-memory pipes beat protected pipes at 1
	// byte; at 8 KB the copy cost dominates and they converge.
	runShared, _ := runner(Config{SharedMemPipes: true})
	runProt, _ := runner(Config{})
	shared1 := ostest.PipeLatency(runShared, 1, 50)
	prot1 := ostest.PipeLatency(runProt, 1, 50)
	if shared1 >= prot1 {
		t.Fatalf("1-byte: shared %v !< protected %v", shared1, prot1)
	}
	shared8k := ostest.PipeLatency(runShared, 8192, 50)
	prot8k := ostest.PipeLatency(runProt, 8192, 50)
	ratio := float64(prot8k) / float64(shared8k)
	if ratio > 1.3 {
		t.Fatalf("8-KB latencies should converge: shared %v vs protected %v", shared8k, prot8k)
	}
	if shared8k < 5*shared1 {
		t.Fatalf("8-KB copies should dominate: %v vs %v", shared8k, shared1)
	}
}

func TestProtectionCallsCharged(t *testing.T) {
	// With Protect on, shared-state writes cost 3 syscalls each
	// (Section 6.3).
	measure := func(protect bool) (int64, int64) {
		run, s := runner(Config{Protect: protect})
		run(func(p unix.Proc) {
			for i := 0; i < 10; i++ {
				fd, err := p.Create("/f", 6)
				if err != nil {
					t.Error(err)
					return
				}
				p.Close(fd)
			}
		})
		return s.Stats().Get(sim.CtrProtCalls), s.Stats().Get(sim.CtrSyscalls)
	}
	protCalls, sysWith := measure(true)
	noProt, sysWithout := measure(false)
	if noProt != 0 {
		t.Fatalf("unprotected run recorded %d protection calls", noProt)
	}
	if protCalls < 60 { // >= 2 shared writes x 3 calls x 10 iterations
		t.Fatalf("protection calls = %d, want >= 60", protCalls)
	}
	if sysWith <= sysWithout {
		t.Fatalf("protection did not increase syscalls: %d vs %d", sysWith, sysWithout)
	}
}

func TestConcurrentProcessesShareFS(t *testing.T) {
	s := Boot(Config{})
	done := 0
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn("worker", 0, func(p unix.Proc) {
			dir := string(rune('a' + i))
			if err := p.Mkdir("/"+dir, 7); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
			fd, err := p.Create("/"+dir+"/f", 6)
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			buf := make([]byte, 20000)
			if _, err := p.Write(fd, buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			p.Close(fd)
			done++
		})
	}
	s.Run()
	if done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
	// All four trees visible from a fifth process.
	s.Spawn("checker", 0, func(p unix.Proc) {
		ents, err := p.Readdir("/")
		if err != nil || len(ents) != 4 {
			t.Errorf("readdir = %v, %v", ents, err)
		}
	})
	s.Run()
}

func TestDeterministicRuns(t *testing.T) {
	elapsed := func() sim.Time {
		run, s := runner(Config{Protect: true})
		if err := ostest.CheckPipe(run); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	if a, b := elapsed(), elapsed(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
