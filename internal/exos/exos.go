// Package exos implements ExOS 1.0, the default library operating
// system for Xok (Section 5.2): a UNIX personality implemented
// entirely as unprivileged library code linked into each application.
//
// Structure mirrors the paper:
//
//   - files go through the C-FFS libFS over XN;
//   - the file descriptor table and process map are shared global
//     state; with Protect set, every write to them is preceded by
//     three system calls, approximating the cost of the fully
//     protected implementation (Section 6.3 — all Section 6 and 8
//     measurements include this cost);
//   - pipes use software regions plus a directed yield (Section
//     5.2.1), with a gratuitous wakeup predicate on every read — the
//     configuration Table 2 calls "Protection"; a mutual-trust
//     shared-memory variant is also provided ("Shared memory");
//   - fork marks pages copy-on-write by scanning the page table with
//     batched system calls and costs ~6 ms (Section 6.2); exec
//     overlays a demand-loaded image.
package exos

import (
	"xok/internal/cap"
	"xok/internal/cffs"
	"xok/internal/fault"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/trace"
	"xok/internal/unix"
	"xok/internal/xn"
)

// Config selects ExOS build options.
type Config struct {
	// Protect charges three system calls before every write to shared
	// global state (fd table, process map, ...). The paper's reported
	// numbers all include this; Section 6.3 measures the system with
	// it (and XN) removed.
	Protect bool

	// SharedMemPipes selects the mutual-trust pipe implementation
	// (Table 2 "Shared memory") instead of software regions +
	// wakeup predicates (Table 2 "Protection").
	SharedMemPipes bool

	// DiskBlocks sizes the volume (default 1<<20 blocks = 4 GB).
	DiskBlocks int64

	// MemPages sizes physical memory (default 16384 pages = 64 MB).
	MemPages int

	// Spindles > 1 builds the volume as a RAID-0 stripe set of that
	// many disks, StripeUnit blocks per unit (see kernel.Config).
	Spindles   int
	StripeUnit int64

	// Trace and Faults are handed straight to the kernel: the
	// observability sink and the deterministic fault plan (both nil by
	// default, costing one nil check per decision point).
	Trace  *trace.Tracer
	Faults *fault.Plan

	// Eng attaches the machine to a shared event engine (nil = build a
	// private one); see kernel.Config.Eng.
	Eng *sim.Engine
}

// System is one booted Xok/ExOS machine.
type System struct {
	K   *kernel.Kernel
	X   *xn.XN
	FS  *cffs.FS
	Cfg Config

	nextPid int
	// The shared process map (pid -> environment), one of the tables
	// kept in shared memory (Section 5.2.1).
	procs map[int]*Proc

	// mounts is the shared mount table (Section 5.2.1), longest
	// prefix first.
	mounts []mount
}

// Boot builds the machine: Xok kernel, XN, and a fresh C-FFS volume,
// ready to spawn UNIX processes.
func Boot(cfg Config) *System {
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 1 << 20
	}
	if cfg.MemPages == 0 {
		cfg.MemPages = 16384
	}
	k := kernel.New(kernel.Config{
		Name:       "xok",
		TrapCost:   sim.CostTrapXok,
		MemPages:   cfg.MemPages,
		DiskSize:   cfg.DiskBlocks,
		Spindles:   cfg.Spindles,
		StripeUnit: cfg.StripeUnit,
		Trace:      cfg.Trace,
		Faults:     cfg.Faults,
		Eng:        cfg.Eng,
	})
	x := xn.New(k)
	x.FlushBehind = 512 // C-FFS flush-behind: ~2 MB of dirty data max
	s := &System{K: k, X: x, Cfg: cfg, nextPid: 1, procs: make(map[int]*Proc)}
	k.Spawn("exos-mkfs", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		fs, err := cffs.Mkfs(e, x, "cffs", cffs.DefaultConfig())
		if err != nil {
			panic("exos: mkfs failed: " + err.Error())
		}
		s.FS = fs
	})
	k.Run()
	return s
}

// Run drains the machine's event queue.
func (s *System) Run() { s.K.Run() }

// Now returns virtual time.
func (s *System) Now() sim.Time { return s.K.Now() }

// Stats exposes the machine counters.
func (s *System) Stats() *sim.Stats { return s.K.Stats }

// sharedWrite accounts one write to shared global state.
func (s *System) sharedWrite(e *kernel.Env) {
	if s.Cfg.Protect {
		s.K.Stats.Add(sim.CtrProtCalls, 3)
		e.Syscalls(3)
	}
}

// Spawn starts a top-level UNIX process running main as uid. The
// returned handle's Wait only works from inside another process; from
// the outside, call Run to drain the machine.
func (s *System) Spawn(name string, uid uint16, main func(unix.Proc)) *Handle {
	pid := s.nextPid
	s.nextPid++
	h := &Handle{}
	h.env = s.K.Spawn(name, func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(uid)
		p := &Proc{s: s, e: e, pid: pid, uid: uid, fds: make(map[unix.FD]*file)}
		s.procs[pid] = p
		main(p)
		p.closeAll()
		delete(s.procs, pid)
	})
	return h
}

// Handle identifies a spawned process.
type Handle struct {
	env *kernel.Env
}

// Env exposes the underlying environment (tests and the workload
// harness use it).
func (h *Handle) Env() *kernel.Env { return h.env }
