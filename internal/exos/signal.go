package exos

import (
	"errors"

	"xok/internal/kernel"
)

// UNIX signals, layered on Xok IPC (Section 5.2.1: "signals are
// layered on top of Xok IPC"). Delivery is asynchronous: Kill
// enqueues an IPC message on the target's environment and wakes it;
// the target observes the signal at its next Signals() poll (the libOS
// checks pending signals on kernel re-entry, like a real libc).

// Signal numbers (the classic subset).
const (
	SIGHUP  = 1
	SIGINT  = 2
	SIGKILL = 9
	SIGTERM = 15
	SIGUSR1 = 30
	SIGUSR2 = 31
)

// ipcKindSignal tags signal messages on the IPC channel.
const ipcKindSignal = 0x516

// ErrNoProcess reports a kill to a nonexistent pid.
var ErrNoProcess = errors.New("exos: no such process")

// Kill sends a signal to the process with the given pid. The process
// map (shared state) is consulted; with Protect on that read is free
// but the IPC send is a system call.
func (p *Proc) Kill(pid int, sig int) error {
	target, ok := p.s.procs[pid]
	if !ok {
		return ErrNoProcess
	}
	return p.e.IPCSend(target.e, kernel.IPCMsg{Kind: ipcKindSignal, A: int64(sig), B: int64(p.pid)})
}

// Signals drains and returns all pending signals (signal number,
// sender pid), in delivery order.
func (p *Proc) Signals() [][2]int {
	var out [][2]int
	for p.e.IPCPending() > 0 {
		m, ok := p.e.IPCTryRecv()
		if !ok {
			break
		}
		if m.Kind == ipcKindSignal {
			out = append(out, [2]int{int(m.A), int(m.B)})
		}
	}
	return out
}

// Pause blocks until a signal arrives, then returns it (sig, sender).
func (p *Proc) Pause() (int, int) {
	for {
		m := p.e.IPCRecv()
		if m.Kind == ipcKindSignal {
			return int(m.A), int(m.B)
		}
	}
}
