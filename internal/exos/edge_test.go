package exos

import (
	"errors"
	"testing"

	"xok/internal/cffs"
	"xok/internal/unix"
)

func TestFDErrors(t *testing.T) {
	s := Boot(Config{})
	s.Spawn("t", 0, func(p unix.Proc) {
		buf := make([]byte, 8)
		if _, err := p.Read(unix.FD(42), buf); !errors.Is(err, ErrBadFD) {
			t.Errorf("read bad fd: %v", err)
		}
		if _, err := p.Write(unix.FD(42), buf); !errors.Is(err, ErrBadFD) {
			t.Errorf("write bad fd: %v", err)
		}
		if err := p.Close(unix.FD(42)); !errors.Is(err, ErrBadFD) {
			t.Errorf("close bad fd: %v", err)
		}
		fd, err := p.Create("/f", 6)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatal(err)
		}
		if err := p.Close(fd); !errors.Is(err, ErrBadFD) {
			t.Errorf("double close: %v", err)
		}
	})
	s.Run()
}

func TestPipeEndMisuse(t *testing.T) {
	s := Boot(Config{})
	s.Spawn("t", 0, func(p unix.Proc) {
		r, w, err := p.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		if _, err := p.Write(r, buf); err == nil {
			t.Error("write to read end succeeded")
		}
		if _, err := p.Read(w, buf); err == nil {
			t.Error("read from write end succeeded")
		}
		if _, err := p.Seek(r, 0, unix.SeekSet); err == nil {
			t.Error("seek on pipe succeeded")
		}
	})
	s.Run()
}

func TestWriteToClosedPipe(t *testing.T) {
	s := Boot(Config{})
	s.Spawn("t", 0, func(p unix.Proc) {
		r, w, err := p.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Close(r); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Write(w, []byte("x")); !errors.Is(err, ErrPipeClosed) {
			t.Errorf("write to reader-less pipe: %v", err)
		}
	})
	s.Run()
}

func TestSeekSemantics(t *testing.T) {
	s := Boot(Config{})
	s.Spawn("t", 0, func(p unix.Proc) {
		fd, err := p.Create("/f", 6)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Write(fd, make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
		if off, _ := p.Seek(fd, -100, unix.SeekEnd); off != 900 {
			t.Errorf("SeekEnd = %d, want 900", off)
		}
		if off, _ := p.Seek(fd, 50, unix.SeekCur); off != 950 {
			t.Errorf("SeekCur = %d, want 950", off)
		}
		if _, err := p.Seek(fd, 0, 99); err == nil {
			t.Error("bad whence accepted")
		}
		// Read at EOF returns 0.
		p.Seek(fd, 0, unix.SeekEnd)
		n, err := p.Read(fd, make([]byte, 10))
		if err != nil || n != 0 {
			t.Errorf("read at EOF = %d, %v", n, err)
		}
	})
	s.Run()
}

func TestOpenDirectoryRejected(t *testing.T) {
	s := Boot(Config{})
	s.Spawn("t", 0, func(p unix.Proc) {
		if err := p.Mkdir("/d", 7); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Open("/d"); !errors.Is(err, cffs.ErrIsDir) {
			t.Errorf("open(dir) = %v, want ErrIsDir", err)
		}
	})
	s.Run()
}

func TestCreateTruncatesExisting(t *testing.T) {
	s := Boot(Config{})
	s.Spawn("t", 0, func(p unix.Proc) {
		fd, _ := p.Create("/f", 6)
		p.Write(fd, make([]byte, 5000))
		p.Close(fd)
		fd2, err := p.Create("/f", 6)
		if err != nil {
			t.Fatal(err)
		}
		p.Close(fd2)
		st, err := p.Stat("/f")
		if err != nil || st.Size != 0 {
			t.Errorf("recreated file size = %d, %v", st.Size, err)
		}
	})
	s.Run()
}
