package exos

import (
	"sort"
	"strings"

	"xok/internal/cffs"
)

// The mount table (Section 5.2.1): "UNIX allows different file systems
// to be attached to its hierarchical name space. ExOS duplicates this
// functionality by maintaining a currently unprotected shared mount
// table that maps directories from one file system to another." The
// table is shared state, so mutations pay the protection calls when
// Protect is on.

type mount struct {
	prefix string
	fs     *cffs.FS
}

// Mount attaches fs at the given directory prefix (e.g. "/tmp"). The
// prefix directory need not exist on the parent file system — the
// mount shadows it, as in UNIX. Longest-prefix wins on lookup.
func (s *System) Mount(prefix string, fs *cffs.FS) {
	prefix = strings.TrimRight(prefix, "/")
	s.mounts = append(s.mounts, mount{prefix: prefix, fs: fs})
	sort.SliceStable(s.mounts, func(i, j int) bool {
		return len(s.mounts[i].prefix) > len(s.mounts[j].prefix)
	})
}

// Unmount detaches the file system at prefix.
func (s *System) Unmount(prefix string) {
	prefix = strings.TrimRight(prefix, "/")
	for i, m := range s.mounts {
		if m.prefix == prefix {
			s.mounts = append(s.mounts[:i], s.mounts[i+1:]...)
			return
		}
	}
}

// resolve maps a path to the owning file system and the path within
// it. The root file system backs everything not covered by a mount.
func (s *System) resolve(path string) (*cffs.FS, string) {
	for _, m := range s.mounts {
		if path == m.prefix {
			return m.fs, "/"
		}
		if strings.HasPrefix(path, m.prefix+"/") {
			return m.fs, path[len(m.prefix):]
		}
	}
	return s.FS, path
}

// resolve2 maps two paths (rename) and reports whether they live on
// the same file system.
func (s *System) resolve2(a, b string) (*cffs.FS, string, string, bool) {
	fsA, ra := s.resolve(a)
	fsB, rb := s.resolve(b)
	return fsA, ra, rb, fsA == fsB
}
