package xok

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"xok/internal/core"
	"xok/internal/difftest"
	"xok/internal/workload"
)

// TestPerfSanityParallelNotSlower is the `make perf-sanity` gate: the
// difftest campaign fanned across 4 workers must not run meaningfully
// slower than the identical campaign serial. It is a wall-clock test,
// so it only runs when `make perf-sanity` opts in via XOK_PERF_SANITY —
// inside the ordinary `go test ./...` sweep (and especially under
// -race) the timing would be pure noise.
//
// The tolerance is deliberately one-sided. On a single-CPU host real
// speedup is impossible and speedup ≈ 1 is the healthy reading; on a
// multi-core host parallel should win outright. In both cases
// parallel-4 losing to serial by more than the tolerance means the
// harness is burning time on coordination or shared-state contention —
// the zero-speedup regression this PR fixed, caught at `make check`
// time instead of in the committed BENCH_sim.json diff.
func TestPerfSanityParallelNotSlower(t *testing.T) {
	if os.Getenv("XOK_PERF_SANITY") == "" {
		t.Skip("wall-clock gate; run via `make perf-sanity` (XOK_PERF_SANITY=1)")
	}
	const seeds = 40
	run := func(workers int) time.Duration {
		start := time.Now()
		div, err := difftest.Fuzz(difftest.Options{Seeds: seeds, Parallel: workers})
		if err != nil {
			t.Fatal(err)
		}
		if div != nil {
			t.Fatalf("unexpected divergence: %v", div)
		}
		return time.Since(start)
	}
	// Warm the process-wide caches (UDF assembly memo, buffer pools) so
	// both timed runs see steady state, then take the best of two runs
	// each to damp scheduler noise.
	run(1)
	serial := min(run(1), run(1))
	parallel := min(run(4), run(4))

	limit := serial + serial/2 // 1.5x: generous, but a contended pool blows past it
	if parallel > limit {
		t.Fatalf("parallel-4 took %v vs serial %v on GOMAXPROCS=%d: beyond the 1.5x tolerance (%v)",
			parallel, serial, runtime.GOMAXPROCS(0), limit)
	}
	t.Logf("serial %v, parallel-4 %v, speedup %.2fx (GOMAXPROCS=%d)",
		serial, parallel, float64(serial)/float64(parallel), runtime.GOMAXPROCS(0))
}

// TestPerfSanityShardFasterThanSingle is the sharded-cluster leg of
// `make perf-sanity`, mirroring the difftest gate above: the 4-server
// cluster cell split across per-server islands must not run
// meaningfully slower than the identical cell on one engine, and on a
// host with CPUs to spare it must actually win by 1.5x. On a
// single-CPU host only the one-sided overhead bound applies — the
// conservative synchronization (locking, promises, wakeups) is pure
// cost there, and this gate caps it.
func TestPerfSanityShardFasterThanSingle(t *testing.T) {
	if os.Getenv("XOK_PERF_SANITY") == "" {
		t.Skip("wall-clock gate; run via `make perf-sanity` (XOK_PERF_SANITY=1)")
	}
	cell := workload.ClusterConfig{Servers: 4, Conns: 1500, Rate: 12000}
	run := func(shard int) time.Duration {
		start := time.Now()
		bench := core.Bench{BenchOpts: core.BenchOpts{Shard: shard}}
		rs, err := bench.Cluster([]workload.ClusterConfig{cell})
		if err != nil {
			t.Fatal(err)
		}
		if rs[0].Completed != rs[0].Conns {
			t.Fatalf("shard=%d: %d/%d connections completed", shard, rs[0].Completed, rs[0].Conns)
		}
		return time.Since(start)
	}
	run(0) // warm the process-wide pools
	single := min(run(0), run(0))
	sharded := min(run(4), run(4))

	speedup := float64(single) / float64(sharded)
	if limit := single + single/2; sharded > limit {
		t.Fatalf("shard-4 took %v vs single-engine %v on GOMAXPROCS=%d: beyond the 1.5x tolerance (%v)",
			sharded, single, runtime.GOMAXPROCS(0), limit)
	}
	if runtime.NumCPU() >= 4 && speedup < 1.5 {
		t.Fatalf("shard-4 speedup %.2fx on %d CPUs, want >= 1.5x (single %v, sharded %v)",
			speedup, runtime.NumCPU(), single, sharded)
	}
	t.Logf("single-engine %v, shard-4 %v, speedup %.2fx (GOMAXPROCS=%d, NumCPU=%d)",
		single, sharded, speedup, runtime.GOMAXPROCS(0), runtime.NumCPU())
}

// TestPerfSanityNoCommittedRegressions reads the committed
// BENCH_sim.json and refuses any derived speedup row benchjson flagged
// "regression": true — a slowdown cannot land silently in the
// baseline. Two severities:
//
//   - wheel rows (heap vs timer wheel) are single-threaded and
//     deterministic, so a regression is real on any host and always
//     fails;
//   - parallel/shard/snapshot rows compare concurrent execution, and
//     on a host without CPUs to spare (the committed baseline was
//     taken on a 1-CPU builder) a ratio hovering just under 1.0 — the
//     BenchmarkCrashSweepSnapshot Parallel4 0.93x of PR 9 — is
//     scheduler measurement noise, not contention. Those rows fail
//     only when NumCPU >= 4, where parallel must genuinely win.
func TestPerfSanityNoCommittedRegressions(t *testing.T) {
	if os.Getenv("XOK_PERF_SANITY") == "" {
		t.Skip("baseline gate; run via `make perf-sanity` (XOK_PERF_SANITY=1)")
	}
	raw, err := os.ReadFile("BENCH_sim.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	type row struct {
		Base       string  `json:"base"`
		Case       string  `json:"case"`
		Mode       string  `json:"mode"`
		Workers    int     `json:"workers"`
		Shards     int     `json:"shards"`
		Speedup    float64 `json:"speedup"`
		Regression bool    `json:"regression"`
	}
	var rep struct {
		ParallelSpeedups []row `json:"parallel_speedups"`
		SnapshotSpeedups []row `json:"snapshot_speedups"`
		ShardSpeedups    []row `json:"shard_speedups"`
		WheelSpeedups    []row `json:"wheel_speedups"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_sim.json: %v", err)
	}
	label := func(kind string, r row) string {
		return fmt.Sprintf("%s %s%s%s (%.2fx)", kind, r.Base, r.Case, r.Mode, r.Speedup)
	}
	for _, r := range rep.WheelSpeedups {
		if r.Regression {
			t.Errorf("committed wheel regression: %s — the timer wheel must not lose to the heap", label("wheel", r))
		}
	}
	concurrent := map[string][]row{
		"parallel": rep.ParallelSpeedups,
		"snapshot": rep.SnapshotSpeedups,
		"shard":    rep.ShardSpeedups,
	}
	for kind, rows := range concurrent {
		for _, r := range rows {
			if !r.Regression {
				continue
			}
			if runtime.NumCPU() >= 4 {
				t.Errorf("committed %s regression: %s on %d CPUs", kind, label(kind, r), runtime.NumCPU())
			} else {
				t.Logf("tolerating committed %s row %s: 1-CPU measurement noise (NumCPU=%d < 4)",
					kind, label(kind, r), runtime.NumCPU())
			}
		}
	}
}
