package xok

import (
	"os"
	"runtime"
	"testing"
	"time"

	"xok/internal/difftest"
)

// TestPerfSanityParallelNotSlower is the `make perf-sanity` gate: the
// difftest campaign fanned across 4 workers must not run meaningfully
// slower than the identical campaign serial. It is a wall-clock test,
// so it only runs when `make perf-sanity` opts in via XOK_PERF_SANITY —
// inside the ordinary `go test ./...` sweep (and especially under
// -race) the timing would be pure noise.
//
// The tolerance is deliberately one-sided. On a single-CPU host real
// speedup is impossible and speedup ≈ 1 is the healthy reading; on a
// multi-core host parallel should win outright. In both cases
// parallel-4 losing to serial by more than the tolerance means the
// harness is burning time on coordination or shared-state contention —
// the zero-speedup regression this PR fixed, caught at `make check`
// time instead of in the committed BENCH_sim.json diff.
func TestPerfSanityParallelNotSlower(t *testing.T) {
	if os.Getenv("XOK_PERF_SANITY") == "" {
		t.Skip("wall-clock gate; run via `make perf-sanity` (XOK_PERF_SANITY=1)")
	}
	const seeds = 40
	run := func(workers int) time.Duration {
		start := time.Now()
		div, err := difftest.Fuzz(difftest.Options{Seeds: seeds, Parallel: workers})
		if err != nil {
			t.Fatal(err)
		}
		if div != nil {
			t.Fatalf("unexpected divergence: %v", div)
		}
		return time.Since(start)
	}
	// Warm the process-wide caches (UDF assembly memo, buffer pools) so
	// both timed runs see steady state, then take the best of two runs
	// each to damp scheduler noise.
	run(1)
	serial := min(run(1), run(1))
	parallel := min(run(4), run(4))

	limit := serial + serial/2 // 1.5x: generous, but a contended pool blows past it
	if parallel > limit {
		t.Fatalf("parallel-4 took %v vs serial %v on GOMAXPROCS=%d: beyond the 1.5x tolerance (%v)",
			parallel, serial, runtime.GOMAXPROCS(0), limit)
	}
	t.Logf("serial %v, parallel-4 %v, speedup %.2fx (GOMAXPROCS=%d)",
		serial, parallel, float64(serial)/float64(parallel), runtime.GOMAXPROCS(0))
}
