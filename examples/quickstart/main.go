// Quickstart: boot a simulated Xok/ExOS machine, run a few unmodified
// UNIX programs against the C-FFS library file system, and print what
// the machine did — the exokernel "hello world".
package main

import (
	"fmt"
	"log"

	"xok/internal/apps"
	"xok/internal/core"
	"xok/internal/sim"
	"xok/internal/unix"
)

func main() {
	// Boot: Xok kernel + XN storage + a fresh C-FFS volume + ExOS.
	sys := core.BootXok()
	fmt.Println("booted Xok/ExOS:",
		sys.K.Mem.NumPages(), "pages of memory,",
		sys.K.Disk.NumBlocks(), "disk blocks")

	// Run an unmodified UNIX-style program as a process.
	var failed error
	sys.Spawn("demo", 501, func(p unix.Proc) {
		if err := run(p); err != nil {
			failed = err
		}
	})
	sys.Run()
	if failed != nil {
		log.Fatal(failed)
	}

	fmt.Printf("\nvirtual time elapsed: %v\n", sys.Now())
	fmt.Printf("system calls: %d, library calls: %d, disk reads: %d, disk writes: %d\n",
		sys.Stats().Get(sim.CtrSyscalls),
		sys.Stats().Get(sim.CtrLibCalls),
		sys.Stats().Get(sim.CtrDiskReads),
		sys.Stats().Get(sim.CtrDiskWrites))
}

func run(p unix.Proc) error {
	fmt.Printf("\nrunning as pid %d, uid %d\n", p.Getpid(), p.UID())

	// Build a small project tree and exercise the classic tools.
	if err := p.Mkdir("/proj", 7); err != nil {
		return err
	}
	text := []byte("the exokernel architecture safely gives untrusted software\n" +
		"efficient control over hardware and software resources\n")
	if err := apps.WriteFile(p, "/proj/abstract.txt", text); err != nil {
		return err
	}
	words, err := apps.Wc(p, "/proj/abstract.txt")
	if err != nil {
		return err
	}
	fmt.Println("wc /proj/abstract.txt:", words, "words")

	hits, err := apps.Grep(p, "/proj", "control")
	if err != nil {
		return err
	}
	fmt.Println("grep control /proj:", hits, "match(es)")

	if err := apps.Cp(p, "/proj/abstract.txt", "/proj/copy.txt"); err != nil {
		return err
	}
	ents, err := p.Readdir("/proj")
	if err != nil {
		return err
	}
	fmt.Print("ls /proj:")
	for _, e := range ents {
		fmt.Printf(" %s(%dB)", e.Name, e.Size)
	}
	fmt.Println()

	// A child process, exokernel style: ExOS implements fork as a
	// library using copy-on-write over Xok's exposed page tables.
	start := p.Now()
	h, err := p.Spawn("child", func(c unix.Proc) {
		_ = apps.WriteFile(c, "/proj/child-was-here", []byte("hi"))
	})
	if err != nil {
		return err
	}
	h.Wait()
	fmt.Printf("fork+exec+wait took %v (ExOS fork is ~6ms, Section 6.2)\n", p.Now()-start)

	return p.Sync()
}
