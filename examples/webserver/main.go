// Webserver: a slice of Figure 3. Serves documents over the simulated
// 3 x 100-Mbit network from three servers — the NCSA-style forking
// server and the socket server on the OpenBSD model, and Cheetah on
// Xok — and prints their throughput side by side.
package main

import (
	"fmt"
	"log"

	"xok/internal/httpd"
	"xok/internal/sim"
)

func main() {
	fmt.Println("HTTP document throughput (24 closed-loop clients, 300ms window)")
	fmt.Println()
	fmt.Printf("%-12s %10s %12s %10s %8s\n", "server", "doc size", "requests/s", "MB/s", "CPU idle")

	kinds := []httpd.Kind{httpd.NCSABSd, httpd.SocketBSD, httpd.SocketXok, httpd.Cheetah}
	for _, size := range []int{0, 1024, 102400} {
		for _, kind := range kinds {
			r, err := httpd.Measure(kind, size, httpd.Opts{Clients: 24, Duration: 300 * sim.Millisecond})
			if err != nil {
				log.Fatalf("%v@%d: %v", kind, size, err)
			}
			fmt.Printf("%-12s %9dB %12.0f %10.1f %7.0f%%\n",
				r.Server, r.DocSize, r.ReqPerSec, r.MBytesPerS, r.CPUIdle*100)
		}
		fmt.Println()
	}

	fmt.Println("Cheetah transmits straight from the file cache with precomputed")
	fmt.Println("checksums and merged control packets; at 100KB it saturates the")
	fmt.Println("network while the socket servers saturate the CPU (Section 7.3).")
}
