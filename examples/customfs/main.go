// Customfs: the exokernel's headline ability — an UNPRIVILEGED
// application defines a brand-new on-disk file system and XN hosts it
// safely next to everything else (Section 4: "creating new file
// formats should be simple and lightweight. It should not require any
// special privilege").
//
// The example builds "logfs", a tiny append-only log store:
//
//	index block: [count:u32][pad:u32] then count x {start:u64, len:u32, pad:u32}
//	data blocks: raw log segments
//
// Its metadata is described to the kernel by three UDFs written in the
// pseudo-RISC template language. The demo appends records, shows XN
// rejecting a lying modification and an out-of-order write, then
// crashes the machine and proves the log survives via XN's
// reachability GC.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"xok/internal/cap"
	"xok/internal/core"
	"xok/internal/disk"
	"xok/internal/exos"
	"xok/internal/kernel"
	"xok/internal/udf"
	"xok/internal/xn"
)

// The owns-udf: walk the index's extent table, emitting what the log
// owns. XN interprets this — the kernel never learns the layout.
const logOwns = `
	li   r0, 0
	ldw  r1, r0, 0      ; count
	li   r2, 0          ; i
	li   r3, 8          ; entry offset
loop:
	bge  r2, r1, done
	ldq  r4, r3, 0      ; start
	ldw  r5, r3, 8      ; len
	li   r6, %d         ; data template id
	emit r4, r5, r6
	addi r3, r3, 16
	addi r2, r2, 1
	jmp  loop
done:
	li   r0, 0
	ret  r0
`

const approveAll = "li r0, 1\nret r0"
const ownsNothing = "li r0, 0\nret r0"
const blockSize = "li r0, 4096\nret r0"

func main() {
	sys := core.BootXokWith(exos.Config{})

	x := sys.X
	var logRoot disk.BlockNo
	var dataT, idxT xn.TemplateID

	// Phase 1: install the new file system's templates and create it.
	sys.K.Spawn("mklogfs", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(777) // an ordinary user, no privilege
		var err error
		dataT, err = x.InstallTemplate(e, xn.Template{
			Name: "logfs.data",
			Owns: udf.MustAssemble("lo", ownsNothing),
			Acl:  udf.MustAssemble("la", approveAll),
			Size: udf.MustAssemble("ls", blockSize),
		})
		check(err)
		idxT, err = x.InstallTemplate(e, xn.Template{
			Name: "logfs.index",
			Owns: udf.MustAssemble("io", fmt.Sprintf(logOwns, dataT)),
			Acl:  udf.MustAssemble("ia", approveAll),
			Size: udf.MustAssemble("is", blockSize),
		})
		check(err)
		logRoot, err = x.AllocRootExtent(e, 5000, 1)
		check(err)
		check(x.RegisterRoot(e, xn.Root{Name: "logfs", Start: logRoot, Count: 1, Tmpl: idxT}))
		_, err = x.LoadRoot(e, "logfs")
		check(err)
		fmt.Printf("logfs created: root block %d, templates data=%d index=%d\n",
			logRoot, dataT, idxT)

		// Append three records.
		for i := 0; i < 3; i++ {
			appendRecord(e, x, logRoot, dataT, fmt.Sprintf("log record #%d", i))
		}
		fmt.Println("appended 3 records")

		// XN's UDF check in action: claim to allocate block A while
		// the modification actually records block B.
		a, _ := x.FindFree(6000, 1)
		mods := indexAppendMods(x, logRoot, a+1, 1) // lie: records a+1
		err = x.Alloc(e, logRoot, mods, udf.Extent{Start: int64(a), Count: 1, Type: int64(dataT)})
		fmt.Printf("lying allocation rejected: %v\n", err)

		// Ordering rule: allocate a new record's block, then try to
		// write the index before the record has ever hit the disk.
		child, _ := x.FindFree(6100, 1)
		check(x.Alloc(e, logRoot, indexAppendMods(x, logRoot, child, 1),
			udf.Extent{Start: int64(child), Count: 1, Type: int64(dataT)}))
		err = x.Write(e, []disk.BlockNo{logRoot})
		fmt.Printf("write of index with uninitialized record rejected: %v\n", err)
		if _, err := x.AttachPage(e, child); err != nil {
			log.Fatal(err)
		}
		copy(x.PageData(child), "log record #3")
		check(x.MarkDirty(e, child))
		check(x.Write(e, []disk.BlockNo{child})) // record first...
		check(x.Sync(e))                         // ...then the index
		fmt.Println("ordered writes completed; log is on disk")
	})
	sys.Run()

	// Phase 2: crash. All memory state is gone; remount from the disk
	// image and let the reachability GC rebuild the free map.
	fmt.Println("\n--- simulated crash; remounting from the disk image ---")
	fmt.Println()
	x2, err := xn.Mount(sys.K)
	check(err)
	sys.K.Spawn("recover", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(777)
		r, err := x2.LoadRoot(e, "logfs")
		check(err)
		data := x2.PageData(r.Start)
		count := binary.LittleEndian.Uint32(data[0:])
		fmt.Printf("recovered logfs: %d extents in the index\n", count)
		dt, _ := x2.TemplateByName("logfs.data")
		for i := uint32(0); i < count; i++ {
			off := 8 + int(i)*16
			start := disk.BlockNo(binary.LittleEndian.Uint64(data[off:]))
			if binary.LittleEndian.Uint32(data[off+8:]) == 0 {
				continue
			}
			check(x2.Insert(e, r.Start, udf.Extent{Start: int64(start), Count: 1, Type: int64(dt.ID)}))
			check(x2.Read(e, []disk.BlockNo{start}, nil))
			blk := x2.PageData(start)
			n := 0
			for n < len(blk) && blk[n] != 0 {
				n++
			}
			fmt.Printf("  extent %d @%d: %q\n", i, start, string(blk[:n]))
		}
		fmt.Printf("free blocks after GC: %d\n", x2.FreeBlocks())
	})
	sys.Run()
}

// appendRecord allocates a data block into the index and writes text.
func appendRecord(e *kernel.Env, x *xn.XN, root disk.BlockNo, dataT xn.TemplateID, text string) {
	b, ok := x.FindFree(root+1, 1)
	if !ok {
		log.Fatal("no free blocks")
	}
	check(x.Alloc(e, root, indexAppendMods(x, root, b, 1),
		udf.Extent{Start: int64(b), Count: 1, Type: int64(dataT)}))
	if _, err := x.AttachPage(e, b); err != nil {
		log.Fatal(err)
	}
	copy(x.PageData(b), text)
	check(x.MarkDirty(e, b))
	check(x.Write(e, []disk.BlockNo{b}))
}

// indexAppendMods builds the byte-level modification that appends an
// extent entry to the index block.
func indexAppendMods(x *xn.XN, root, start disk.BlockNo, count uint32) []xn.Mod {
	data := x.PageData(root)
	n := binary.LittleEndian.Uint32(data[0:])
	entry := make([]byte, 16)
	binary.LittleEndian.PutUint64(entry[0:], uint64(start))
	binary.LittleEndian.PutUint32(entry[8:], count)
	cnt := make([]byte, 4)
	binary.LittleEndian.PutUint32(cnt, n+1)
	return []xn.Mod{
		{Off: 8 + int(n)*16, Bytes: entry},
		{Off: 0, Bytes: cnt},
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
