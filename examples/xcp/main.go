// XCP: the "zero-touch" file copy of Section 7.2. Copies a batch of
// files twice — once with the ordinary UNIX cp through the ExOS file
// descriptor layer, once with XCP through the raw XN/disk interfaces —
// and reports both times, warm and cold.
package main

import (
	"fmt"
	"log"

	"xok/internal/apps"
	"xok/internal/cap"
	"xok/internal/core"
	"xok/internal/exos"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/unix"
)

const (
	nFiles   = 8
	fileSize = 400_000
)

func main() {
	fmt.Printf("copying %d files of %d KB each\n\n", nFiles, fileSize/1024)
	for _, cold := range []bool{false, true} {
		label := "in core"
		if cold {
			label = "on disk (cold cache)"
		}
		cpT := run(cold, false)
		xcpT := run(cold, true)
		fmt.Printf("%-22s cp=%10v   xcp=%10v   speedup %.1fx\n",
			label, cpT, xcpT, float64(cpT)/float64(xcpT))
	}
	fmt.Println("\nXCP sorts all source blocks into one disk schedule, overlaps")
	fmt.Println("allocation with the reads, and binds the cached pages to the new")
	fmt.Println("blocks - the CPU never touches the data (Section 7.2).")
}

// run stages the files on a fresh machine and copies them.
func run(cold, useXCP bool) sim.Time {
	sys := core.BootXokWith(exos.Config{})

	// Stage interleaved (fragmented) source files.
	sys.Spawn("stage", 0, func(p unix.Proc) {
		fds := make([]unix.FD, nFiles)
		for i := range fds {
			fd, err := p.Create(fmt.Sprintf("/src%d", i), 6)
			if err != nil {
				log.Fatal(err)
			}
			fds[i] = fd
		}
		chunk := make([]byte, sim.DiskBlockSize)
		for off := 0; off < fileSize; off += len(chunk) {
			for i := range fds {
				if _, err := p.Write(fds[i], chunk); err != nil {
					log.Fatal(err)
				}
			}
		}
		for _, fd := range fds {
			p.Close(fd)
		}
		if err := p.Sync(); err != nil {
			log.Fatal(err)
		}
	})
	sys.Run()

	if cold {
		sys.K.Spawn("evict", func(e *kernel.Env) {
			e.Creds = cap.UnixCreds(0)
			for {
				if _, ok := sys.X.RecycleLRU(e); !ok {
					return
				}
			}
		})
		sys.Run()
	} else {
		sys.Spawn("warm", 0, func(p unix.Proc) {
			for i := 0; i < nFiles; i++ {
				if _, err := apps.ReadFile(p, fmt.Sprintf("/src%d", i)); err != nil {
					log.Fatal(err)
				}
			}
		})
		sys.Run()
	}

	pairs := make([][2]string, nFiles)
	for i := range pairs {
		pairs[i] = [2]string{fmt.Sprintf("/src%d", i), fmt.Sprintf("/dst%d", i)}
	}

	start := sys.Now()
	var end sim.Time
	if useXCP {
		sys.K.Spawn("xcp", func(e *kernel.Env) {
			e.Creds = cap.UnixCreds(0)
			if err := apps.XCP(e, sys.FS, pairs); err != nil {
				log.Fatal(err)
			}
			end = sys.Now()
		})
	} else {
		sys.Spawn("cp", 0, func(p unix.Proc) {
			for _, pr := range pairs {
				if err := apps.Cp(p, pr[0], pr[1]); err != nil {
					log.Fatal(err)
				}
			}
			end = p.Now()
		})
	}
	sys.Run()
	return end - start
}
