package xok

import (
	"testing"

	"xok/internal/core"
	"xok/internal/difftest"
	"xok/internal/fault"
	"xok/internal/netsim"
	"xok/internal/workload"
)

// Serial-vs-parallel wall-clock baselines for the run harness. Each
// pair runs the identical campaign with the worker pool off and on;
// the ns/op gap is the harness speedup on this host (on a single-CPU
// host the pair instead bounds the pool's scheduling overhead).
// `make bench` runs these once (-benchtime=1x) and folds the numbers
// into BENCH_sim.json.

func benchDifftest(b *testing.B, workers int, snapshot bool) {
	for i := 0; i < b.N; i++ {
		div, err := difftest.Fuzz(difftest.Options{Seeds: 100, Parallel: workers, Snapshot: snapshot})
		if err != nil {
			b.Fatal(err)
		}
		if div != nil {
			b.Fatalf("unexpected divergence: %v", div)
		}
	}
}

func BenchmarkDifftest100Serial(b *testing.B)    { benchDifftest(b, 1, false) }
func BenchmarkDifftest100Parallel4(b *testing.B) { benchDifftest(b, 4, false) }

// The Snapshot variants run the identical campaign with the fork fast
// path on (seeds fork per-personality post-boot snapshots instead of
// re-booting); outcomes are bit-identical, only wall-clock moves. The
// benchjson derivation pairs each with its from-boot twin above.
func BenchmarkDifftest100SnapshotSerial(b *testing.B)    { benchDifftest(b, 1, true) }
func BenchmarkDifftest100SnapshotParallel4(b *testing.B) { benchDifftest(b, 4, true) }

func benchCrashSweep(b *testing.B, workers int, snapshot bool) {
	for i := 0; i < b.N; i++ {
		res, err := workload.CrashEnumerate(workload.CrashConfig{
			Plan:      &fault.Plan{Seed: 42, TornWrites: true},
			MaxPoints: 12,
			Parallel:  workers,
			Snapshot:  snapshot,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations() != 0 {
			b.Fatalf("%d crash points failed recovery", res.Violations())
		}
	}
}

func BenchmarkCrashSweepSerial(b *testing.B)    { benchCrashSweep(b, 1, false) }
func BenchmarkCrashSweepParallel4(b *testing.B) { benchCrashSweep(b, 4, false) }

// Snapshot variants: crash trials fork from the probe's segment
// snapshots instead of re-running the workload prefix from boot.
func BenchmarkCrashSweepSnapshotSerial(b *testing.B)    { benchCrashSweep(b, 1, true) }
func BenchmarkCrashSweepSnapshotParallel4(b *testing.B) { benchCrashSweep(b, 4, true) }

func benchCluster(b *testing.B, workers, shard int) {
	for i := 0; i < b.N; i++ {
		bench := core.Bench{BenchOpts: core.BenchOpts{Parallel: workers, Shard: shard}}
		rs, err := bench.Cluster(workload.ClusterCells(4, 400, 8000))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Completed != r.Conns {
				b.Fatalf("%d servers: %d/%d connections completed", r.Servers, r.Completed, r.Conns)
			}
		}
	}
}

// The Parallel4 leg distributes whole cells over workers — the sweep
// is three cells dominated by the largest, so it barely moves
// (benchjson flags its speedup row intra_run: false). The Shard4 leg
// is the real within-run parallelism: each cell's fabric splits into
// per-server islands running concurrently, byte-identical output.
func BenchmarkClusterSerial(b *testing.B)    { benchCluster(b, 1, 0) }
func BenchmarkClusterParallel4(b *testing.B) { benchCluster(b, 4, 0) }
func BenchmarkClusterShard4(b *testing.B)    { benchCluster(b, 1, 4) }

// BenchmarkClusterConns100k is the connection-scale cell the timer
// wheel and the netsim allocation pass exist for: one 4-server cell
// under 100k open-loop arrivals, offered just below the aggregate
// service capacity so the backlog stays bounded (no 1-server baseline
// — a single server would backlog ~all arrivals and the cell would
// measure RTO thrash, not serving). Reports events-per-host-second,
// the simulator-throughput number the scheduling backend moves.
func benchCluster100k(b *testing.B, noWheel bool) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := workload.Cluster(workload.ClusterConfig{
			Servers: 4, Conns: 100_000, Rate: 4000,
			Policy: netsim.LeastConnections, NoWheel: noWheel,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != res.Conns {
			b.Fatalf("%d/%d connections completed", res.Completed, res.Conns)
		}
		events += res.EngineEvents
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
}

func BenchmarkClusterConns100k(b *testing.B)        { benchCluster100k(b, false) }
func BenchmarkClusterConns100kNoWheel(b *testing.B) { benchCluster100k(b, true) }
