// Package xok's root benchmark harness: one testing.B benchmark per
// table and figure in the paper's evaluation. Each benchmark runs the
// full experiment and reports the measured *virtual* quantities via
// b.ReportMetric — the wall-clock ns/op of the simulation itself is
// incidental. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/xok-bench prints the same experiments as formatted tables, and
// EXPERIMENTS.md records paper-vs-measured values.
package xok

import (
	"fmt"
	"testing"

	"xok/internal/apps"
	"xok/internal/bsdos"
	"xok/internal/cap"
	"xok/internal/core"
	"xok/internal/exos"
	"xok/internal/httpd"
	"xok/internal/kernel"
	"xok/internal/machine"
	"xok/internal/ostest"
	"xok/internal/sim"
	"xok/internal/unix"
	"xok/internal/workload"
)

// BenchmarkFigure2_IOIntensive regenerates Figure 2 / Table 1: the
// lcc-install workload on the four systems. Reported metric:
// virtual seconds of total workload time per system.
func BenchmarkFigure2_IOIntensive(b *testing.B) {
	systems := []struct {
		name string
		mk   func() workload.Machine
	}{
		{"Xok-ExOS", workload.NewXok},
		{"OpenBSD-CFFS", func() workload.Machine { return workload.NewBSD(bsdos.OpenBSDCFFS) }},
		{"OpenBSD", func() workload.Machine { return workload.NewBSD(bsdos.OpenBSD) }},
		{"FreeBSD", func() workload.Machine { return workload.NewBSD(bsdos.FreeBSD) }},
	}
	for _, s := range systems {
		b.Run(s.name, func(b *testing.B) {
			var total sim.Time
			for i := 0; i < b.N; i++ {
				res, err := workload.IOIntensive(s.mk())
				if err != nil {
					b.Fatal(err)
				}
				total = res.Total
			}
			b.ReportMetric(total.Seconds(), "vsec/run")
		})
	}
}

// BenchmarkMAB regenerates the Modified Andrew Benchmark totals.
func BenchmarkMAB(b *testing.B) {
	systems := []struct {
		name string
		mk   func() workload.Machine
	}{
		{"Xok-ExOS", workload.NewXok},
		{"FreeBSD", func() workload.Machine { return workload.NewBSD(bsdos.FreeBSD) }},
	}
	for _, s := range systems {
		b.Run(s.name, func(b *testing.B) {
			var total sim.Time
			for i := 0; i < b.N; i++ {
				res, err := workload.MAB(s.mk())
				if err != nil {
					b.Fatal(err)
				}
				total = res.Total
			}
			b.ReportMetric(total.Seconds(), "vsec/run")
		})
	}
}

// BenchmarkProtectionCost regenerates Section 6.3: runtime and
// syscall-count deltas between protected and unprotected Xok/ExOS.
func BenchmarkProtectionCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.ProtectionCost()
		if err != nil {
			b.Fatal(err)
		}
		w, wo := res.WithProtection, res.WithoutProtection
		b.ReportMetric(w.Total.Seconds(), "vsec-protected")
		b.ReportMetric(wo.Total.Seconds(), "vsec-unprotected")
		b.ReportMetric(float64(w.Syscalls), "syscalls-protected")
		b.ReportMetric(float64(wo.Syscalls), "syscalls-unprotected")
	}
}

// BenchmarkTable2_Pipes regenerates Table 2: pipe latencies for the
// three implementations at 1 byte and 8 KB.
func BenchmarkTable2_Pipes(b *testing.B) {
	impls := []struct {
		name string
		run  func() ostest.RunFunc
	}{
		{"SharedMemory", func() ostest.RunFunc {
			return machine.Runner(machine.MustNew(machine.Config{
				Personality: machine.XokExOS, SharedMemPipes: true}))
		}},
		{"Protection", func() ostest.RunFunc {
			return machine.Runner(machine.MustNew(machine.Config{Personality: machine.XokExOS}))
		}},
		{"OpenBSD", func() ostest.RunFunc {
			return machine.Runner(machine.MustNew(machine.Config{Personality: machine.OpenBSD}))
		}},
	}
	for _, impl := range impls {
		for _, size := range []int{1, 8192} {
			b.Run(fmt.Sprintf("%s/%dB", impl.name, size), func(b *testing.B) {
				var lat sim.Time
				for i := 0; i < b.N; i++ {
					lat = ostest.PipeLatency(impl.run(), size, 100)
				}
				b.ReportMetric(lat.Micros(), "vus/transfer")
			})
		}
	}
}

// BenchmarkEmulatorGetpid regenerates Section 7.1: the trivial system
// call natively on OpenBSD vs emulated on Xok/ExOS.
func BenchmarkEmulatorGetpid(b *testing.B) {
	b.Run("OpenBSD-native", func(b *testing.B) {
		var cycles sim.Time
		for i := 0; i < b.N; i++ {
			m := machine.MustNew(machine.Config{Personality: machine.OpenBSD})
			cycles = ostest.GetpidCost(machine.Runner(m))
		}
		b.ReportMetric(float64(cycles), "vcycles/call")
	})
	b.Run("Xok-emulated", func(b *testing.B) {
		var cycles sim.Time
		for i := 0; i < b.N; i++ {
			m := machine.MustNew(machine.Config{Personality: machine.XokExOS})
			cycles = ostest.GetpidCost(func(fn func(unix.Proc)) {
				m.SpawnProc("t", 0, func(p unix.Proc) {
					fn(wrapEmulated{p})
				})
				m.Run()
			})
		}
		b.ReportMetric(float64(cycles), "vcycles/call")
	})
}

// wrapEmulated adds the INT-reroute cost to getpid, mirroring
// internal/emu without the import cycle risk in this harness.
type wrapEmulated struct{ unix.Proc }

func (w wrapEmulated) Getpid() int {
	w.Compute(12)
	return w.Proc.Getpid()
}

// BenchmarkXCP regenerates Section 7.2: cp vs XCP, warm and cold.
func BenchmarkXCP(b *testing.B) {
	for _, cold := range []bool{false, true} {
		name := "InCore"
		if cold {
			name = "OnDisk"
		}
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				cpT, xcpT := xcpPair(b, cold)
				ratio = float64(cpT) / float64(xcpT)
			}
			b.ReportMetric(ratio, "cp/xcp-speedup")
		})
	}
}

// xcpPair stages fragmented files on fresh machines and copies them
// with cp and with XCP, returning both elapsed virtual times.
func xcpPair(b *testing.B, cold bool) (cpT, xcpT sim.Time) {
	b.Helper()
	const n, size = 8, 400_000
	stage := func() (*exos.System, [][2]string) {
		s := machine.MustNew(machine.Config{Personality: machine.XokExOS}).(machine.Xok).S
		pairs := make([][2]string, n)
		s.Spawn("stage", 0, func(p unix.Proc) {
			fds := make([]unix.FD, n)
			for i := range fds {
				fd, err := p.Create(fmt.Sprintf("/s%d", i), 6)
				if err != nil {
					b.Error(err)
					return
				}
				fds[i] = fd
				pairs[i] = [2]string{fmt.Sprintf("/s%d", i), fmt.Sprintf("/d%d", i)}
			}
			chunk := make([]byte, sim.DiskBlockSize)
			for off := 0; off < size; off += len(chunk) {
				for i := range fds {
					if _, err := p.Write(fds[i], chunk); err != nil {
						b.Error(err)
						return
					}
				}
			}
			for _, fd := range fds {
				p.Close(fd)
			}
			if err := p.Sync(); err != nil {
				b.Error(err)
			}
		})
		s.Run()
		if cold {
			s.K.Spawn("evict", func(e *kernel.Env) {
				e.Creds = cap.UnixCreds(0)
				for {
					if _, ok := s.X.RecycleLRU(e); !ok {
						return
					}
				}
			})
			s.Run()
		}
		return s, pairs
	}

	sc, pairsC := stage()
	start := sc.Now()
	var end sim.Time
	sc.Spawn("cp", 0, func(p unix.Proc) {
		for _, pr := range pairsC {
			if err := apps.Cp(p, pr[0], pr[1]); err != nil {
				b.Error(err)
				return
			}
		}
		end = p.Now()
	})
	sc.Run()
	cpT = end - start

	sx, pairsX := stage()
	start = sx.Now()
	sx.K.Spawn("xcp", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		if err := apps.XCP(e, sx.FS, pairsX); err != nil {
			b.Error(err)
		}
		end = sx.Now()
	})
	sx.Run()
	xcpT = end - start
	return
}

// BenchmarkFigure3_HTTP regenerates Figure 3 at two representative
// sizes for every server. Metric: virtual requests/second.
func BenchmarkFigure3_HTTP(b *testing.B) {
	for _, kind := range httpd.Kinds() {
		for _, size := range []int{1024, 102400} {
			b.Run(fmt.Sprintf("%s/%dB", kind, size), func(b *testing.B) {
				var rps, mbps float64
				for i := 0; i < b.N; i++ {
					r, err := httpd.Measure(kind, size, httpd.Opts{Clients: 24, Duration: 200 * sim.Millisecond})
					if err != nil {
						b.Fatal(err)
					}
					rps, mbps = r.ReqPerSec, r.MBytesPerS
				}
				b.ReportMetric(rps, "vreq/vsec")
				b.ReportMetric(mbps, "vMB/vsec")
			})
		}
	}
}

// BenchmarkFigure4_GlobalPool1 regenerates a Figure 4 cell (14 jobs,
// concurrency 2) on Xok/ExOS and FreeBSD.
func BenchmarkFigure4_GlobalPool1(b *testing.B) {
	benchGlobal(b, core.Pool1())
}

// BenchmarkFigure5_GlobalPool2 regenerates a Figure 5 cell on the
// pool with C-FFS-favoured jobs.
func BenchmarkFigure5_GlobalPool2(b *testing.B) {
	benchGlobal(b, core.Pool2())
}

func benchGlobal(b *testing.B, pool []workload.JobKind) {
	systems := []struct {
		name string
		mk   func() workload.Machine
	}{
		{"Xok-ExOS", workload.NewXok},
		{"FreeBSD", func() workload.Machine { return workload.NewBSD(bsdos.FreeBSD) }},
	}
	for _, s := range systems {
		b.Run(s.name, func(b *testing.B) {
			var res workload.GlobalResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = workload.GlobalPerf(s.mk(), pool, 14, 2, 1234)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Total.Seconds(), "vsec-total")
			b.ReportMetric(res.Max.Seconds(), "vsec-maxlat")
			b.ReportMetric(res.Min.Seconds(), "vsec-minlat")
		})
	}
}
