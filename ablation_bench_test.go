package xok

import (
	"fmt"
	"testing"

	"xok/internal/apps"
	"xok/internal/cap"
	"xok/internal/cffs"
	"xok/internal/disk"
	"xok/internal/kernel"
	"xok/internal/sim"
	"xok/internal/xn"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// strips one structural property and measures what it was worth on a
// representative slice of the Table 1 workload (unpack an archive,
// then delete the tree — the metadata-heavy steps).

// cffsVariants isolates each C-FFS property in turn.
var cffsVariants = []struct {
	name string
	cfg  cffs.Config
}{
	{"C-FFS", cffs.DefaultConfig()},
	{"NoColocation", cffs.Config{Colocate: false, SyncMeta: false, EmbeddedInodes: true}},
	{"SyncMetadata", cffs.Config{Colocate: true, SyncMeta: true, EmbeddedInodes: true}},
	{"SplitInodes", cffs.Config{Colocate: true, SyncMeta: false, EmbeddedInodes: false}},
	{"FFS(all-off)", cffs.FFSConfig()},
}

// unpackDelete is the measured workload: unpack a ~1.3-MB archive into
// a tree, sync, delete the tree.
func unpackDelete(b *testing.B, cfg cffs.Config, flushBehind int, fifo bool) sim.Time {
	return unpackDeleteSpindles(b, cfg, flushBehind, fifo, 1)
}

func unpackDeleteSpindles(b *testing.B, cfg cffs.Config, flushBehind int, fifo bool, spindles int) sim.Time {
	b.Helper()
	k := kernel.New(kernel.Config{Name: "abl", MemPages: 8192, DiskSize: 65536, Spindles: spindles})
	k.Disk.FIFO = fifo
	x := xn.New(k)
	x.FlushBehind = flushBehind

	spec := apps.TreeSpec{}
	for d := 0; d < 4; d++ {
		dir := fmt.Sprintf("d%d", d)
		spec.Dirs = append(spec.Dirs, dir)
		for i := 0; i < 12; i++ {
			spec.Files = append(spec.Files, apps.FileSpec{
				Path: fmt.Sprintf("%s/f%02d", dir, i), Size: 20000 + i*1000,
			})
		}
	}
	archive := apps.ArchiveBytes(spec)

	var fs *cffs.FS
	var start, end sim.Time
	k.Spawn("run", func(e *kernel.Env) {
		e.Creds = cap.UnixCreds(0)
		var err error
		fs, err = cffs.Mkfs(e, x, "abl", cfg)
		if err != nil {
			b.Error(err)
			return
		}
		// Stage the archive bytes as a file via direct writes.
		ref, err := fs.Create(e, "/in.tar", 0, 0, 6)
		if err != nil {
			b.Error(err)
			return
		}
		if _, err := fs.WriteAt(e, ref, 0, archive); err != nil {
			b.Error(err)
			return
		}
		if err := fs.Sync(e); err != nil {
			b.Error(err)
			return
		}

		start = k.Now()
		// Unpack.
		if err := fs.Mkdir(e, "/out", 0, 0, 7); err != nil {
			b.Error(err)
			return
		}
		data := archive
		off := 0
		for off < len(data) {
			kind, name, size, next, err := apps.ParseArchiveHeader(data, off)
			if err != nil {
				b.Error(err)
				return
			}
			off = next
			switch kind {
			case 'D':
				if err := fs.Mkdir(e, "/out/"+name, 0, 0, 7); err != nil {
					b.Error(err)
					return
				}
			case 'F':
				fref, err := fs.Create(e, "/out/"+name, 0, 0, 6)
				if err != nil {
					b.Error(err)
					return
				}
				if _, err := fs.WriteAt(e, fref, 0, data[off:off+size]); err != nil {
					b.Error(err)
					return
				}
				off += size
			}
		}
		if err := fs.Sync(e); err != nil {
			b.Error(err)
			return
		}
		// Delete.
		for i := len(spec.Files) - 1; i >= 0; i-- {
			if err := fs.Unlink(e, "/out/"+spec.Files[i].Path); err != nil {
				b.Error(err)
				return
			}
		}
		for i := len(spec.Dirs) - 1; i >= 0; i-- {
			if err := fs.Rmdir(e, "/out/"+spec.Dirs[i]); err != nil {
				b.Error(err)
				return
			}
		}
		if err := fs.Sync(e); err != nil {
			b.Error(err)
			return
		}
		end = k.Now()
	})
	k.Run()
	return end - start
}

// BenchmarkAblationCFFS measures each C-FFS structural property.
func BenchmarkAblationCFFS(b *testing.B) {
	for _, v := range cffsVariants {
		b.Run(v.name, func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t = unpackDelete(b, v.cfg, 512, false)
			}
			b.ReportMetric(t.Millis(), "vms/workload")
		})
	}
}

// BenchmarkAblationFlushBehind sweeps the flush-behind threshold
// (0 disables it: dirty data accumulates until an explicit sync).
func BenchmarkAblationFlushBehind(b *testing.B) {
	for _, fb := range []int{0, 64, 512, 4096} {
		b.Run(fmt.Sprintf("threshold=%d", fb), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t = unpackDelete(b, cffs.DefaultConfig(), fb, false)
			}
			b.ReportMetric(t.Millis(), "vms/workload")
		})
	}
}

// BenchmarkAblationRAID runs the FFS-profile workload (synchronous
// metadata writes = lots of small disk I/O) on 1-, 2- and 4-spindle
// RAID-0 sets (Section 4.6's RAID as a storage substrate).
func BenchmarkAblationRAID(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("spindles=%d", n), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t = unpackDeleteSpindles(b, cffs.FFSConfig(), 512, false, n)
			}
			b.ReportMetric(t.Millis(), "vms/workload")
		})
	}
}

// BenchmarkAblationDiskScheduler compares the driver's CSCAN against
// FIFO servicing on a deep queue of scattered reads — the XCP-style
// batch where scheduling matters ("if multiple instances of XCP run
// concurrently, the disk driver will merge the schedules").
func BenchmarkAblationDiskScheduler(b *testing.B) {
	for _, fifo := range []bool{false, true} {
		name := "CSCAN"
		if fifo {
			name = "FIFO"
		}
		b.Run(name, func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				st := sim.NewStats()
				d := disk.New(eng, st, 1<<20)
				d.FIFO = fifo
				rng := sim.NewRNG(99)
				for j := 0; j < 256; j++ {
					d.Submit(&disk.Request{Block: disk.BlockNo(rng.Intn(1 << 20)), Count: 1})
				}
				eng.Run()
				t = eng.Now()
			}
			b.ReportMetric(t.Millis(), "vms/256-reads")
		})
	}
}
