module xok

go 1.22
