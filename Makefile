GO ?= go

.PHONY: all build fmt vet test race crash fuzz-smoke race-parallel perf-sanity cluster-smoke shard-smoke snapshot-smoke wheel-smoke check bench

all: check

build:
	$(GO) build ./...

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The crash-enumeration suite, forced to re-run (-count=1) under the
# race detector: fault injection must stay bit-deterministic even with
# -race's scheduling noise.
crash:
	$(GO) test -race -count=1 -run TestCrashEnum ./internal/workload/

# A fixed-seed differential fuzzing campaign: 100 syscall programs,
# every personality compared against every other (internal/difftest).
# Deterministic by construction, so a failure here is a real semantic
# divergence, never flake.
fuzz-smoke:
	$(GO) run ./cmd/xok-bench -run difftest -seeds 100

# A short difftest batch fanned across 4 workers under the race
# detector: the canary for cross-machine shared state. Any package
# global mutated by two concurrently-running machines surfaces here as
# a data race (this is how xn's package-level LRU clock was caught).
race-parallel:
	$(GO) run -race ./cmd/xok-bench -run difftest -seeds 12 -parallel 4

# Perf sanity: the difftest campaign fanned across 4 workers must not
# be slower than the same campaign serial beyond a generous tolerance,
# and likewise the sharded cluster cell against its single-engine twin
# (single-CPU hosts legitimately see speedup ~1, and hosts with >= 4
# CPUs must see the sharded cell actually win; what this catches is
# the harness actively LOSING to serial — coordination overhead or
# shared-state contention). Reduced sizes keep it quick; the
# XOK_PERF_SANITY guard keeps the wall-clock assertions out of
# ordinary `go test ./...` runs where they would be noise.
perf-sanity:
	XOK_PERF_SANITY=1 $(GO) test -run TestPerfSanity -count=1 -v .

# Cluster smoke: a small topology-fabric sweep (1 server vs 2 behind
# the balancer) end to end through the xok-bench CLI. Guards the whole
# shared-engine path — N kernels on one event engine, the balancer,
# open-loop arrivals — and its serial/parallel determinism (the full
# byte-identical check lives in TestClusterParallelMatchesSerial).
cluster-smoke:
	$(GO) run ./cmd/xok-bench -run cluster -servers 2 -conns 300

# Shard smoke: the same tiny cluster with its fabric split across
# per-server islands, under the race detector — the canary for the
# conservative parallel scheduler's cross-island channels (the full
# byte-identity check lives in TestClusterShardMatchesSingleEngine).
shard-smoke:
	$(GO) run -race ./cmd/xok-bench -run cluster -servers 2 -conns 300 -shard 2

# Snapshot smoke: the fork fast path's equivalence guards, re-run
# (-count=1) under the race detector — replay equivalence (fork at a
# random MAB boundary continues bit-identically, with and without an
# armed fault plan), the crash sweep's snapshot-vs-boot digest match,
# and difftest's from-boot-vs-forked exact compare with concurrent
# forks from shared snapshots.
snapshot-smoke:
	$(GO) test -race -count=1 -run 'TestSnapshot' ./internal/workload/ ./internal/difftest/

# Wheel smoke: the cluster at 100k connections under the race
# detector, digest-pinned — one 4-server cell runs with the timer
# wheel and again on the pure heap, single-engine and sharded, and
# within each topology the latency digests and engine event counts
# must match exactly (the wheel is an implementation detail; only
# host time may move). The XOK_WHEEL_SMOKE guard keeps the
# multi-minute raced run out of ordinary `go test ./...`.
wheel-smoke:
	XOK_WHEEL_SMOKE=1 $(GO) test -race -count=1 -run TestClusterConns100kWheelDigest -v ./internal/workload/

# The full pre-commit gate: everything compiles, the tree is gofmt
# clean, vet is clean, the whole suite passes under the race detector
# (the token-handoff protocol in internal/sim is exactly the kind of
# code -race exists for), the parallel harness is race-clean, the
# crash-enumeration sweep re-runs, the differential fuzz smoke
# campaign comes back clean, snapshot forking reproduces boot runs
# bit-exactly, the 100k-connection cluster digests identically with
# the timer wheel on and off, and the parallel harness is not slower
# than serial.
check: build fmt vet race race-parallel crash fuzz-smoke cluster-smoke shard-smoke snapshot-smoke wheel-smoke perf-sanity

# Wall-clock benchmark baseline, committed as BENCH_sim.json so engine
# or harness regressions show up as a diff. Two tiers: the engine
# micro-benchmarks run at the default benchtime (they are the ns/op +
# allocs/op numbers the fast path is judged on); the end-to-end
# experiment benchmarks (MAB, difftest serial-vs-parallel, crash
# serial-vs-parallel) each run their full campaign once, -benchtime=1x.
# Raw `go test` output passes through on stderr; stdout carries the
# JSON (see cmd/benchjson). The -expect list makes a silently vanished
# benchmark (renamed, paniced, filtered out) fail the run instead of
# quietly shrinking the committed baseline.
BENCH_EXPECT = BenchmarkEngineStepAfter16,BenchmarkEngineStepAfter1024,\
BenchmarkEngineStepAfterArg16,BenchmarkEngineStepAfterArg1024,\
BenchmarkEngineScheduleCancel,BenchmarkEngineScheduleCancelWheel,\
BenchmarkEngineTimersHeap65536,BenchmarkEngineTimersWheel65536,\
BenchmarkEngineTimersHeap1M,BenchmarkEngineTimersWheel1M,\
BenchmarkMAB/Xok-ExOS,BenchmarkMAB/FreeBSD,\
BenchmarkDifftest100Serial,BenchmarkDifftest100Parallel4,\
BenchmarkDifftest100SnapshotSerial,BenchmarkDifftest100SnapshotParallel4,\
BenchmarkCrashSweepSerial,BenchmarkCrashSweepParallel4,\
BenchmarkCrashSweepSnapshotSerial,BenchmarkCrashSweepSnapshotParallel4,\
BenchmarkClusterSerial,BenchmarkClusterParallel4,BenchmarkClusterShard4,\
BenchmarkClusterConns100k,BenchmarkClusterConns100kNoWheel

bench:
	@{ $(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem ./internal/sim/ && \
	   $(GO) test -run '^$$' -bench 'BenchmarkMAB$$|BenchmarkDifftest100|BenchmarkCrashSweep|BenchmarkCluster' -benchmem -benchtime=1x . ; } \
	  | $(GO) run ./cmd/benchjson -expect '$(BENCH_EXPECT)' > BENCH_sim.json
	@echo "wrote BENCH_sim.json"
