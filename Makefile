GO ?= go

.PHONY: all build fmt vet test race crash fuzz-smoke check bench

all: check

build:
	$(GO) build ./...

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The crash-enumeration suite, forced to re-run (-count=1) under the
# race detector: fault injection must stay bit-deterministic even with
# -race's scheduling noise.
crash:
	$(GO) test -race -count=1 -run TestCrashEnum ./internal/workload/

# A fixed-seed differential fuzzing campaign: 100 syscall programs,
# every personality compared against every other (internal/difftest).
# Deterministic by construction, so a failure here is a real semantic
# divergence, never flake.
fuzz-smoke:
	$(GO) run ./cmd/xok-bench -run difftest -seeds 100

# The full pre-commit gate: everything compiles, the tree is gofmt
# clean, vet is clean, the whole suite passes under the race detector
# (the token-handoff protocol in internal/sim is exactly the kind of
# code -race exists for), the crash-enumeration sweep re-runs, and the
# differential fuzz smoke campaign comes back clean.
check: build fmt vet race crash fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem ./...
