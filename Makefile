GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-commit gate: everything compiles, vet is clean, and the
# whole suite passes under the race detector (the token-handoff
# protocol in internal/sim is exactly the kind of code -race exists
# for).
check: build vet race

bench:
	$(GO) test -bench=. -benchmem ./...
