GO ?= go

.PHONY: all build fmt vet test race crash check bench

all: check

build:
	$(GO) build ./...

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The crash-enumeration suite, forced to re-run (-count=1) under the
# race detector: fault injection must stay bit-deterministic even with
# -race's scheduling noise.
crash:
	$(GO) test -race -count=1 -run TestCrashEnum ./internal/workload/

# The full pre-commit gate: everything compiles, the tree is gofmt
# clean, vet is clean, the whole suite passes under the race detector
# (the token-handoff protocol in internal/sim is exactly the kind of
# code -race exists for), and the crash-enumeration sweep re-runs.
check: build fmt vet race crash

bench:
	$(GO) test -bench=. -benchmem ./...
